#!/bin/sh
# lint_smoke.sh — the CI static-analysis gate (`make aimlint`).
#
# Two halves, same shape as check_smoke.sh. First the positive
# contract: aimlint's six determinism/API-discipline rules over the
# whole module must exit 0 — the tree as shipped lints clean. Then the
# negative contract: freshly seeded violations in a temp tree (a naked
# goroutine reading the wall clock, then a stale //aimlint:allow) must
# each flip the exit code to 1. A linter that cannot see the violation
# it was built for is worse than no linter; this script is the
# mechanical proof that it can.
set -u

GO="${GO:-go}"
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

aimlint="$tmp/aimlint"
$GO build -o "$aimlint" ./cmd/aimlint || exit 1

fail=0

# expect WANT DESC ARGS... — run aimlint, require exit code WANT.
expect() {
	want=$1
	desc=$2
	shift 2
	"$aimlint" "$@" >/dev/null 2>&1
	got=$?
	if [ "$got" -ne "$want" ]; then
		echo "lint_smoke: $desc: exit $got, want $want"
		fail=1
	else
		echo "lint_smoke: ok ($desc)"
	fi
}

expect 0 "repository lints clean" ./...

seed="$tmp/seeded"
mkdir -p "$seed"
cat >"$seed/bad.go" <<'EOF'
package seeded

import "time"

// Leak launches an untracked goroutine reading the wall clock: the
// no-naked-go and no-wallclock rules must both fire on it.
func Leak() {
	go func() { _ = time.Now() }()
}
EOF
expect 1 "seeded violation flips the gate" "$seed"

cat >"$seed/bad.go" <<'EOF'
package seeded

// Fine has nothing to suppress; the stale allow below must flip the
// gate on its own.
//
//aimlint:allow no-wallclock — nothing here reads the clock
func Fine() int { return 1 }
EOF
expect 1 "stale allow flips the gate" "$seed"

if [ "$fail" -ne 0 ]; then
	echo "lint_smoke: FAILED"
	exit 1
fi
echo "lint_smoke: OK"
