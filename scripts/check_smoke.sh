#!/bin/sh
# check_smoke.sh — the CI integrity gate (`make check`).
#
# Two halves. First the positive contract: aimcheck over the pin
# manifest, a freshly-populated plan-cache directory and every
# committed BENCH_*.json must exit 0 — the tree as shipped verifies.
# Then the negative contract: one deliberate corruption per artifact
# class (bit-flipped plan entry, truncated plan entry, orphaned temp
# file, tampered manifest pin, malformed bench JSON), each of which
# must flip the exit code to 1. A checker that cannot see the
# corruption it was built for is worse than no checker; this script is
# the mechanical proof that it can.
#
# Experiment-table pins are deliberately not recomputed here (that is
# `aimcheck -experiments`, ~40s for all 22 tables); the race-test step
# already proves them byte-identical via TestTableBytesPinnedByManifest.
set -u

GO="${GO:-go}"
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

aimcheck="$tmp/aimcheck"
$GO build -o "$aimcheck" ./cmd/aimcheck || exit 1

# Populate a fresh plan store the way production does: one-shot aimc
# runs writing compiled plans back through the atomic temp-file path.
plans="$tmp/plans"
echo "check_smoke: populating plan cache" >&2
$GO run ./cmd/aimc -net mobilenetv2 -plan-cache-dir "$plans" >/dev/null || exit 1
$GO run ./cmd/aimc -net resnet18 -mode sprint -seed 2 -plan-cache-dir "$plans" >/dev/null || exit 1

fail=0

# expect WANT DESC ARGS... — run aimcheck, require exit code WANT.
expect() {
	want=$1
	desc=$2
	shift 2
	out=$("$aimcheck" "$@" 2>&1)
	code=$?
	if [ "$code" -ne "$want" ]; then
		echo "check_smoke: FAIL: $desc: exit $code, want $want" >&2
		printf '%s\n' "$out" | sed 's/^/  /' >&2
		fail=1
	else
		echo "check_smoke: ok: $desc (exit $code)" >&2
	fi
}

# clone SRC DST — corruption cases each work on their own copy of the
# pristine plan store so faults never stack.
clone() {
	rm -rf "$2"
	cp -R "$1" "$2"
}

# entry DIR — path of the first stored plan entry in DIR.
entry() {
	find "$1" -type f | sort | head -n 1
}

# 1. Pristine tree: manifest + plan store + committed bench artifacts.
set -- -plan-cache-dir "$plans"
for f in BENCH_*.json; do
	[ -e "$f" ] && set -- "$@" "$f"
done
expect 0 "pristine tree verifies" "$@"

# 2. Bit-flipped plan entry: xor the middle byte in place.
clone "$plans" "$tmp/flip"
e=$(entry "$tmp/flip")
size=$(wc -c <"$e")
off=$((size / 2))
b=$(dd if="$e" bs=1 skip="$off" count=1 2>/dev/null | od -An -tu1 | tr -d ' ')
printf "$(printf '\\%03o' $(((b + 128) % 256)))" |
	dd of="$e" bs=1 seek="$off" count=1 conv=notrunc 2>/dev/null
expect 1 "bit-flipped plan entry detected" -plan-cache-dir "$tmp/flip"

# 3. Truncated plan entry: keep the first half (a crashed writer that
# somehow skipped the temp-file protocol).
clone "$plans" "$tmp/trunc"
e=$(entry "$tmp/trunc")
size=$(wc -c <"$e")
head -c $((size / 2)) "$e" >"$e.cut" && mv "$e.cut" "$e"
expect 1 "truncated plan entry detected" -plan-cache-dir "$tmp/trunc"

# 4. Orphaned temp file: a writer that died between write and rename.
clone "$plans" "$tmp/orphan"
e=$(entry "$tmp/orphan")
printf 'partial' >"$(dirname "$e")/tmp-$(basename "$e")-1234"
expect 1 "orphaned temp file detected" -plan-cache-dir "$tmp/orphan"

# 5. Tampered manifest pin: zero the ascii irmap hash. Still 64 hex
# chars, so only the re-derivation — not shape validation — catches it.
sed 's/"ascii": "[0-9a-f]*"/"ascii": "0000000000000000000000000000000000000000000000000000000000000000"/' \
	manifest/experiments.json >"$tmp/experiments.json"
expect 1 "tampered manifest pin detected" -manifest "$tmp/experiments.json"

# 6. Malformed bench artifact: truncated JSON.
printf '{"benchmarks": [' >"$tmp/BENCH_bad.json"
expect 1 "malformed bench artifact detected" "$tmp/BENCH_bad.json"

if [ "$fail" -ne 0 ]; then
	echo "check_smoke: FAILED" >&2
	exit 1
fi
echo "check_smoke: OK" >&2
