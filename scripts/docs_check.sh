#!/bin/sh
# docs_check.sh — the CI docs gate (`make docs-check`).
#
# Two promises the documentation pass made, kept true mechanically:
#   1. Every Go package under internal/ and cmd/ carries a package doc
#      comment ("// Package <name> ..." for libraries, "// Command
#      <name> ..." for main packages), so `go doc` is never empty.
#   2. Every relative link in ARCHITECTURE.md and README.md resolves
#      to a file or directory in the repo, so the navigation map never
#      rots.
set -eu

cd "$(dirname "$0")/.."
fail=0

for dir in internal/*/ cmd/*/; do
	[ -d "$dir" ] || continue
	name=$(basename "$dir")
	# Any non-test Go file may carry the package comment; look for the
	# canonical "// Package <name>" (libraries) or "// Command <name>"
	# (main packages) form.
	if ! grep -qsE "^// (Package|Command) $name " "$dir"*.go; then
		echo "docs-check: $dir has no '// Package $name ...' or '// Command $name ...' doc comment"
		fail=1
	fi
done

for md in ARCHITECTURE.md README.md; do
	[ -f "$md" ] || { echo "docs-check: $md is missing"; fail=1; continue; }
	# Pull every markdown link target, keep the relative ones (no
	# scheme, no pure-anchor), strip any #fragment, and require the
	# path to exist.
	for target in $(grep -oE '\]\([^)]+\)' "$md" | sed -e 's/^](//' -e 's/)$//' |
		grep -vE '^(https?:|mailto:|#)' | sed 's/#.*$//' | sort -u); do
		[ -n "$target" ] || continue
		if [ ! -e "$target" ]; then
			echo "docs-check: $md links to $target, which does not exist"
			fail=1
		fi
	done
done

if [ "$fail" -ne 0 ]; then
	echo "docs-check: FAILED"
	exit 1
fi
echo "docs-check: OK"
