#!/bin/sh
# docs_check.sh — the CI docs gate (`make docs-check`).
#
# Four promises the documentation passes made, kept true mechanically:
#   1. Every Go package under internal/ and cmd/ carries a package doc
#      comment ("// Package <name> ..." for libraries, "// Command
#      <name> ..." for main packages), so `go doc` is never empty.
#   2. Every relative link in ARCHITECTURE.md and README.md resolves
#      to a file or directory in the repo, so the navigation map never
#      rots.
#   3. CHANGES.md carries exactly one line per PR, each starting
#      "PR <n>: " with n sequential from 1 — it is the next session's
#      only memory of this one, and a skipped or doubled entry breaks
#      that chain silently.
#   4. ISSUE.md keeps its structural headers (# ISSUE, ## Motivation,
#      ## Tentpole, ## Satellite tasks, ## Acceptance criteria), so
#      the task contract stays parseable.
set -eu

cd "$(dirname "$0")/.."
fail=0

for dir in internal/*/ cmd/*/; do
	[ -d "$dir" ] || continue
	name=$(basename "$dir")
	# Any non-test Go file may carry the package comment; look for the
	# canonical "// Package <name>" (libraries) or "// Command <name>"
	# (main packages) form.
	if ! grep -qsE "^// (Package|Command) $name " "$dir"*.go; then
		echo "docs-check: $dir has no '// Package $name ...' or '// Command $name ...' doc comment"
		fail=1
	fi
done

for md in ARCHITECTURE.md README.md; do
	[ -f "$md" ] || { echo "docs-check: $md is missing"; fail=1; continue; }
	# Pull every markdown link target, keep the relative ones (no
	# scheme, no pure-anchor), strip any #fragment, and require the
	# path to exist.
	for target in $(grep -oE '\]\([^)]+\)' "$md" | sed -e 's/^](//' -e 's/)$//' |
		grep -vE '^(https?:|mailto:|#)' | sed 's/#.*$//' | sort -u); do
		[ -n "$target" ] || continue
		if [ ! -e "$target" ]; then
			echo "docs-check: $md links to $target, which does not exist"
			fail=1
		fi
	done
done

if [ ! -f CHANGES.md ]; then
	echo "docs-check: CHANGES.md is missing"
	fail=1
else
	n=0
	while IFS= read -r line; do
		[ -n "$line" ] || continue
		n=$((n + 1))
		case "$line" in
		"PR $n: "*) ;;
		*)
			echo "docs-check: CHANGES.md non-empty line $n must start with 'PR $n: '"
			fail=1
			;;
		esac
	done <CHANGES.md
	if [ "$n" -lt 1 ]; then
		echo "docs-check: CHANGES.md has no PR lines"
		fail=1
	fi
fi

if [ -f ISSUE.md ]; then
	for h in '^# ISSUE' '^## Motivation$' '^## Tentpole$' '^## Satellite tasks$' '^## Acceptance criteria$'; do
		if ! grep -qE "$h" ISSUE.md; then
			echo "docs-check: ISSUE.md is missing a header matching '$h'"
			fail=1
		fi
	done
fi

if [ "$fail" -ne 0 ]; then
	echo "docs-check: FAILED"
	exit 1
fi
echo "docs-check: OK"
